// Simlint is the multichecker for the repo's determinism and scheduler
// invariants (see internal/analysis). It type-checks the named packages
// (./... by default, test files included) and reports every finding not
// covered by a //simlint:allow suppression, exiting nonzero if any remain.
//
// Usage:
//
//	go run ./cmd/simlint [-run detlint,schedlint] [-list] \
//	    [-json findings.json] [-readiness readiness.json] [-budget 90s] \
//	    [packages]
//
// -json writes every finding — suppressed ones included, with the suppressed
// flag set — as a machine-readable report (the CI artifact). -readiness
// writes the per-package serialization-readiness reports produced by
// statelint's state walk, the worklist for checkpoint/restore (ROADMAP item
// 5). -budget fails the run if analysis wall-clock exceeds the duration, so
// the lint gate cannot quietly eat the edit-compile loop.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"diablo/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.String("json", "", "write all findings (suppressed included) as JSON to this file")
	readiness := flag.String("readiness", "", "write per-package serialization-readiness reports as JSON to this file")
	budget := flag.Duration("budget", 0, "fail if analysis wall-clock exceeds this duration (0 = no budget)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	start := time.Now()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	var all []analysis.Finding
	var reports []*analysis.StateReport
	failed := false
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		all = append(all, findings...)
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			failed = true
			fmt.Println(f)
		}
		if *readiness != "" && analysis.IsModelPackage(pkg.Path) {
			reports = append(reports, analysis.BuildStateReport(pkg))
		}
	}
	elapsed := time.Since(start)

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, findingsReport(all, elapsed)); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	}
	if *readiness != "" {
		if err := writeJSON(*readiness, reports); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "simlint: analysis took %s, over the %s budget\n",
			elapsed.Round(time.Millisecond), *budget)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable form of one finding.
type jsonFinding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

type report struct {
	ElapsedMS  int64         `json:"elapsed_ms"`
	Total      int           `json:"total"`
	Suppressed int           `json:"suppressed"`
	Findings   []jsonFinding `json:"findings"`
}

func findingsReport(all []analysis.Finding, elapsed time.Duration) report {
	r := report{ElapsedMS: elapsed.Milliseconds(), Findings: []jsonFinding{}}
	for _, f := range all {
		r.Total++
		if f.Suppressed {
			r.Suppressed++
		}
		r.Findings = append(r.Findings, jsonFinding{
			Analyzer:   f.Analyzer,
			File:       f.Pos.Filename,
			Line:       f.Pos.Line,
			Column:     f.Pos.Column,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
	}
	return r
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
