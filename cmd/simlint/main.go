// Simlint is the multichecker for the repo's determinism and scheduler
// invariants (see internal/analysis). It type-checks the named packages
// (./... by default, test files included) and reports every finding not
// covered by a //simlint:allow suppression, exiting nonzero if any remain.
//
// Usage:
//
//	go run ./cmd/simlint [-run detlint,schedlint] [-list] [packages]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"diablo/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "simlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	failed := false
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			failed = true
			fmt.Println(f)
		}
	}
	if failed {
		os.Exit(1)
	}
}
