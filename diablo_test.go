package diablo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"fig2", "table1", "table2", "proto",
		"fig6a", "fig6b", "fig8", "fig9", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "perf",
		"faultmc", "faultincast",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("registry missing %q", id)
		}
	}
	if len(have) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(have), len(want))
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestStaticExperimentsRender(t *testing.T) {
	for _, id := range []string{"fig2", "table1", "table2", "proto"} {
		out, err := RunExperiment(id, ExperimentOptions{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if strings.TrimSpace(out.String()) == "" {
			t.Fatalf("%s rendered empty", id)
		}
	}
}

func TestFacadeQuickstart(t *testing.T) {
	// The README quickstart, as a test: the public API must be sufficient
	// to build a cluster and run application code.
	cluster, err := NewCluster(DefaultClusterConfig(TopologyParams{
		ServersPerRack: 2, RacksPerArray: 1, Arrays: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var got any
	cluster.Machine(0).Spawn("server", func(th *Thread) {
		sock, err := th.UDPSocket(7000)
		if err != nil {
			return
		}
		_, _, payload, err := sock.RecvFrom(th)
		if err != nil {
			return
		}
		got = payload
	})
	cluster.Machine(1).Spawn("client", func(th *Thread) {
		sock, err := th.UDPSocket(0)
		if err != nil {
			return
		}
		_ = sock.SendTo(th, Addr{Node: 0, Port: 7000}, 64, "hello")
	})
	cluster.RunUntil(Second)
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
}

func TestExperimentSmallRuns(t *testing.T) {
	// One dynamic experiment end-to-end through the registry at tiny scale.
	out, err := RunExperiment("fig6a", ExperimentOptions{
		Senders: []int{1, 4}, Iterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 3 {
		t.Fatalf("fig6a series = %d, want 3", len(out.Series))
	}
	for _, s := range out.Series {
		if s.Len() != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Name, s.Len())
		}
	}
}

func TestObservedExperimentWritesArtifacts(t *testing.T) {
	// The -trace-out / -manifest-out path end to end through the registry:
	// a graceful-degradation experiment with observation attached must write
	// a loadable Chrome trace and a run manifest carrying the degradation.
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	manifestPath := filepath.Join(dir, "manifest.json")
	out, err := RunExperiment("faultincast", ExperimentOptions{
		Iterations:  2,
		TraceOut:    tracePath,
		ManifestOut: manifestPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(out.Notes, "\n")
	if !strings.Contains(joined, "observed faulted run") {
		t.Fatalf("observation note missing:\n%s", joined)
	}

	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace is empty")
	}

	manifestData, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(manifestData, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m["schema"] != "diablo/run-manifest/v1" {
		t.Fatalf("manifest schema = %v", m["schema"])
	}
	if m["experiment"] != "faultincast" {
		t.Fatalf("manifest experiment = %v", m["experiment"])
	}
	if m["degradation"] == nil {
		t.Fatal("manifest degradation missing")
	}
	if m["stats_hash"] == "" || m["stats_hash"] == nil {
		t.Fatal("manifest stats hash missing")
	}
}

func TestObservedFaultMCExperiment(t *testing.T) {
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "m.json")
	out, err := RunExperiment("faultmc", ExperimentOptions{
		Requests:    5,
		ManifestOut: manifestPath, // manifest only: TraceOut stays optional
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) == 0 {
		t.Fatal("degradation table missing")
	}
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if m["experiment"] != "faultmc" || m["degradation"] == nil {
		t.Fatalf("manifest incomplete: experiment=%v", m["experiment"])
	}
	if _, err := os.Stat(filepath.Join(dir, "trace.json")); !os.IsNotExist(err) {
		t.Fatal("trace written without TraceOut")
	}
}
