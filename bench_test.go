// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced scale (see DESIGN.md §3 for the per-experiment index and the
// reduced-scale policy). Each benchmark reports the figure's headline
// numbers as custom metrics, so `go test -bench` output is itself a compact
// rendering of the paper's results; the cmd/diablo CLI prints the full
// series.
package diablo

import (
	"runtime"
	"time"

	"testing"

	"diablo/internal/core"
	"diablo/internal/fpga"
	"diablo/internal/survey"
)

// benchSenders keeps the incast sweeps bench-sized.
var benchSenders = []int{1, 2, 4, 8, 16, 24}

func benchIncastSweep() IncastSweep {
	return IncastSweep{Senders: benchSenders, Iterations: 8, Seed: 1}
}

func benchMcSweep() MemcachedSweep {
	return MemcachedSweep{RequestsPerClient: 80, Seed: 1}
}

func BenchmarkFigure2Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := survey.Figure2()
		if s.Len() == 0 {
			b.Fatal("empty survey")
		}
	}
	b.ReportMetric(float64(survey.MedianServers()), "median-servers")
	b.ReportMetric(float64(survey.MedianSwitches()), "median-switches")
}

func BenchmarkTable1Workloads(b *testing.B) {
	var c map[survey.Workload]int
	for i := 0; i < b.N; i++ {
		c = survey.WorkloadCounts()
	}
	b.ReportMetric(float64(c[survey.Microbenchmark]), "microbenchmark")
	b.ReportMetric(float64(c[survey.Trace]), "trace")
	b.ReportMetric(float64(c[survey.Application]), "application")
}

func BenchmarkTable2FPGAResources(b *testing.B) {
	var u float64
	for i := 0; i < b.N; i++ {
		u = fpga.RackFPGATotal().Utilization(fpga.Virtex5LX155T)
	}
	b.ReportMetric(u*100, "binding-util-%")
	b.ReportMetric(float64(fpga.RackFPGATotal().LUT), "total-LUT")
}

func BenchmarkSection34Prototype(b *testing.B) {
	var servers int
	for i := 0; i < b.N; i++ {
		servers = fpga.PaperPrototype().SimulatedServers()
	}
	b.ReportMetric(float64(servers), "servers")
	b.ReportMetric(fpga.PaperCostComparison().CapexRatio(), "capex-ratio")
}

func BenchmarkFigure6aIncast1G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := Figure6a(benchIncastSweep())
		if err != nil {
			b.Fatal(err)
		}
		diablo, hw := series[0], series[2]
		// Headline: line rate at 1 sender, DIABLO collapses below hardware.
		b.ReportMetric(diablo.Y[0], "diablo-1sender-mbps")
		b.ReportMetric(diablo.Y[3], "diablo-8sender-mbps")
		b.ReportMetric(hw.Y[3], "hardware-8sender-mbps")
	}
}

func BenchmarkFigure6bIncast10G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep := benchIncastSweep()
		sweep.Senders = []int{1, 9, 23}
		series, err := Figure6b(sweep)
		if err != nil {
			b.Fatal(err)
		}
		// Headline: 2 GHz pthread capped near 1.8 Gbps before collapse.
		b.ReportMetric(series[2].Y[0], "pthread2ghz-1sender-mbps")
		b.ReportMetric(series[0].Y[0], "pthread4ghz-1sender-mbps")
		b.ReportMetric(series[2].Y[2], "pthread2ghz-23sender-mbps")
	}
}

func BenchmarkFigure8RackValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := DefaultFigure8()
		opts.Clients = []int{2, 8, 14}
		opts.RequestsPerClient = 250
		th, lat, err := Figure8(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(th[1].Y[2], "diablo-14cl-req/s")
		b.ReportMetric(th[0].Y[2], "physical-14cl-req/s")
		b.ReportMetric(lat[1].Y[2], "diablo-14cl-mean-us")
	}
}

func BenchmarkFigure9Cdf120(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := Figure9(benchMcSweep())
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatalf("want 4 curves, got %d", len(series))
		}
	}
}

func BenchmarkFigure10PmfHops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultMemcached()
		cfg.RequestsPerClient = 80
		res, err := RunMemcached(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ByHop[Local].Percentile(.5).Microseconds(), "local-p50-us")
		b.ReportMetric(res.ByHop[TwoHop].Percentile(.5).Microseconds(), "2hop-p50-us")
		b.ReportMetric(float64(res.ByHop[TwoHop].Count())/float64(res.Samples), "2hop-fraction")
	}
}

func BenchmarkFigure11ScaleTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := Figure11(benchMcSweep())
		if err != nil {
			b.Fatal(err)
		}
		_ = series
	}
	// Report the scale amplification directly.
	for _, arrays := range []int{1, 4} {
		cfg := DefaultMemcached()
		cfg.Arrays = arrays
		cfg.RequestsPerClient = 80
		res, err := RunMemcached(cfg)
		if err != nil {
			b.Fatal(err)
		}
		name := "p99-500node-us"
		if arrays == 4 {
			name = "p99-2000node-us"
		}
		b.ReportMetric(res.Overall.Percentile(.99).Microseconds(), name)
	}
}

func BenchmarkFigure12SwitchLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := Figure12(benchMcSweep())
		if err != nil {
			b.Fatal(err)
		}
		_ = series
	}
}

func BenchmarkFigure13TcpVsUdp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweep := benchMcSweep()
		sweep.RequestsPerClient = 60
		series, err := Figure13(sweep)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 12 {
			b.Fatalf("want 12 curves, got %d", len(series))
		}
	}
}

func BenchmarkFigure14KernelVersions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := Figure14(benchMcSweep())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(results[0].Overall.Mean().Microseconds(), "mean-2.6.39-us")
		b.ReportMetric(results[1].Overall.Mean().Microseconds(), "mean-3.5.7-us")
	}
}

func BenchmarkFigure15MemcachedVersions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := Figure15(benchMcSweep())
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatalf("want 4 curves, got %d", len(series))
		}
	}
}

func BenchmarkSection5SimulatorPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := Section5Performance([]int{1}, 60)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Slowdown, "slowdown-496node-x")
	}
}

func BenchmarkSection5Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := Section5Performance([]int{1, 4}, 40)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Slowdown, "slowdown-496-x")
		b.ReportMetric(points[1].Slowdown, "slowdown-1984-x")
	}
}

func BenchmarkSection5EngineParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := EngineComparisonMeasured(8, 100_000)
		b.ReportMetric(st.SeqEventsPerSec/1e6, "seq-Mev/s")
		b.ReportMetric(st.ParEventsPerSec/1e6, "par-Mev/s")
		b.ReportMetric(st.Speedup(), "speedup-x")
		b.ReportMetric(st.SeqAllocsPerEvent, "seq-allocs/ev")
		b.ReportMetric(st.ParAllocsPerEvent, "par-allocs/ev")
		b.ReportMetric(st.CaptureEventsPerSec/1e6, "capture-Mev/s")
		b.ReportMetric(st.CaptureAllocsPerEvent, "capture-allocs/ev")
		b.ReportMetric(st.TypedEventsPerSec/1e6, "typed-Mev/s")
		b.ReportMetric(st.TypedAllocsPerEvent, "typed-allocs/ev")
		b.ReportMetric(st.TypedSpeedup(), "typed-speedup-x")
	}
}

// BenchmarkParallelClusterSpeedup runs the same multi-rack memcached model
// single-threaded and with one worker per CPU, reporting the wall-clock
// ratio. The two runs produce identical simulation results (asserted by
// TestMemcachedWorkerCountDeterminism); on a multi-core host the parallel
// run should be >= 1.5x faster at this scale. On a single-core host the
// ratio degenerates to ~1x — the barrier protocol, not the hardware, is
// what this benchmark exercises there.
func BenchmarkParallelClusterSpeedup(b *testing.B) {
	run := func(workers int) time.Duration {
		cfg := DefaultMemcached()
		cfg.Arrays = 2 // 32 racks + fabric = 33 partitions, 992 nodes
		cfg.RequestsPerClient = 30
		cfg.Partitions = workers
		start := time.Now()
		if _, err := RunMemcached(cfg); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	for i := 0; i < b.N; i++ {
		serial := run(1)
		parallel := run(runtime.NumCPU())
		b.ReportMetric(serial.Seconds(), "serial-s")
		b.ReportMetric(parallel.Seconds(), "parallel-s")
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-x")
		b.ReportMetric(float64(runtime.NumCPU()), "cpus")
	}
}

// --- ablations (DESIGN.md §4) -------------------------------------------------

func BenchmarkAblationSwitchArch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		voq := core.DefaultIncast(8)
		voq.Iterations = 8
		shared := voq
		shared.Switch = SharedBufferCommodity("tor", 0)
		rv, err := RunIncast(voq)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := RunIncast(shared)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rv.GoodputBps/1e6, "voq-mbps")
		b.ReportMetric(rs.GoodputBps/1e6, "shared-mbps")
	}
}

func BenchmarkAblationMinRTO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ms := range []int{200, 20, 2} {
			cfg := core.DefaultIncast(8)
			cfg.Iterations = 8
			cfg.MinRTO = Duration(ms) * Millisecond
			res, err := RunIncast(cfg)
			if err != nil {
				b.Fatal(err)
			}
			switch ms {
			case 200:
				b.ReportMetric(res.GoodputBps/1e6, "rto200ms-mbps")
			case 20:
				b.ReportMetric(res.GoodputBps/1e6, "rto20ms-mbps")
			case 2:
				b.ReportMetric(res.GoodputBps/1e6, "rto2ms-mbps")
			}
		}
	}
}

func BenchmarkAblationNicIrq(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, itr := range []Duration{-1, 20 * Microsecond, 100 * Microsecond} {
			cfg := DefaultMemcached()
			cfg.Arrays = 1
			cfg.RequestsPerClient = 60
			cfg.NICRxITR = itr
			res, err := RunMemcached(cfg)
			if err != nil {
				b.Fatal(err)
			}
			us := res.Overall.Percentile(.99).Microseconds()
			switch itr {
			case -1:
				b.ReportMetric(us, "no-mitigation-p99-us")
			case 20 * Microsecond:
				b.ReportMetric(us, "itr20us-p99-us")
			default:
				b.ReportMetric(us, "itr100us-p99-us")
			}
		}
	}
}

func BenchmarkAblationCPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cpi := range []float64{0.5, 1, 2} {
			cfg := core.DefaultIncast(1)
			cfg.Iterations = 6
			cfg.CPU.CPI = cpi
			res, err := RunIncast(cfg)
			if err != nil {
				b.Fatal(err)
			}
			switch cpi {
			case 0.5:
				b.ReportMetric(res.GoodputBps/1e6, "cpi0.5-mbps")
			case 1:
				b.ReportMetric(res.GoodputBps/1e6, "cpi1-mbps")
			default:
				b.ReportMetric(res.GoodputBps/1e6, "cpi2-mbps")
			}
		}
	}
}
