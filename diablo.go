// Package diablo is a software reproduction of DIABLO ("Datacenter-In-A-Box
// at LOw cost"), the FPGA-based warehouse-scale computer network simulator of
// Tan, Qian, Chen, Asanović and Patterson (ASPLOS 2015).
//
// DIABLO simulated O(1,000)-O(10,000) datacenter servers — each running a
// full software stack — together with their NICs and every level of the
// datacenter switching hierarchy, using FPGA-hosted abstract performance
// models (FAME-7). This package implements those same abstract models in
// pure Go on a deterministic discrete-event engine:
//
//   - fixed-CPI server models running a simulated Linux-like kernel
//     (scheduler, syscalls, sockets, epoll, NAPI driver) with real
//     application code making simulated syscalls;
//   - an Intel 8254x-style NIC model with descriptor rings and interrupt
//     mitigation;
//   - virtual-output-queue and shared-buffer switch models arranged in the
//     paper's three-level Clos topology;
//   - from-scratch TCP (Reno/NewReno, 200 ms min-RTO) and UDP transports;
//   - the paper's workloads: the TCP Incast benchmark and memcached driven
//     by a Facebook-calibrated (ETC) workload generator.
//
// Every table and figure of the paper's evaluation is reproducible through
// the experiment registry (see Experiments) or the cmd/diablo CLI. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results.
//
// # Quickstart
//
//	cluster, err := diablo.NewCluster(diablo.DefaultClusterConfig(
//	    diablo.TopologyParams{ServersPerRack: 4, RacksPerArray: 2, Arrays: 1}))
//	...
//	cluster.Machine(0).Spawn("server", func(t *diablo.Thread) { ... })
//	cluster.RunUntil(diablo.Second)
//
// See examples/ for complete programs.
package diablo

import (
	"diablo/internal/apps/incast"
	"diablo/internal/apps/memcache"
	"diablo/internal/core"
	"diablo/internal/cpu"
	"diablo/internal/fault"
	"diablo/internal/kernel"
	"diablo/internal/metrics"
	"diablo/internal/obs"
	"diablo/internal/packet"
	"diablo/internal/sim"
	"diablo/internal/topology"
	"diablo/internal/vswitch"
	"diablo/internal/workload"
)

// Simulation time and scheduling.
type (
	// Time is an absolute simulated time (picoseconds since epoch).
	Time = sim.Time
	// Duration is a span of simulated time.
	Duration = sim.Duration
	// Scheduler is the engine-agnostic event-scheduling surface: it is
	// satisfied by the sequential engine and by the per-partition handles of
	// a parallel run. Model code never sees a concrete engine type.
	Scheduler = sim.Scheduler
	// EventID names a scheduled event for cancellation.
	EventID = sim.EventID
	// Event is a typed, pointer-light event record — the zero-allocation
	// scheduling lane (Scheduler.AtEvent/AfterEvent) used by the per-packet
	// hot paths. See DESIGN.md §5.9 for the ABI.
	Event = sim.Event
	// EvKind tags an Event and indexes the engine's handler jump table.
	EvKind = sim.EvKind
	// Handler dispatches one typed event kind; registered per engine.
	Handler = sim.Handler
	// HandlerRegistrar is the registration surface (RegisterHandler) both
	// engines expose; package RegisterEventHandlers helpers take it.
	HandlerRegistrar = sim.HandlerRegistrar
)

// Typed-event kinds (the jump-table rows). Model packages register handlers
// for their own kinds via their RegisterEventHandlers helpers; EvAppTick is
// free for harness and benchmark models.
const (
	EvPacketHop    = sim.EvPacketHop
	EvSwitchTxDone = sim.EvSwitchTxDone
	EvSwitchWake   = sim.EvSwitchWake
	EvNicTx        = sim.EvNicTx
	EvNicRxIntr    = sim.EvNicRxIntr
	EvTimerTick    = sim.EvTimerTick
	EvKernelSpan   = sim.EvKernelSpan
	EvAppTick      = sim.EvAppTick
)

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Cluster construction.
type (
	// ClusterConfig describes a complete simulated array.
	ClusterConfig = core.Config
	// Cluster is a fully wired simulated WSC array.
	Cluster = core.Cluster
	// TopologyParams sizes the Clos topology.
	TopologyParams = topology.Params
	// Topology computes routes and hop classes.
	Topology = topology.Topology
	// HopClass classifies paths (Local / OneHop / TwoHop).
	HopClass = topology.HopClass
	// ClusterOption customizes cluster execution (parallelism, quantum).
	ClusterOption = core.Option
	// EnginePlan is an engine-selection decision; see PlanEngine.
	EnginePlan = core.EnginePlan
	// SwitchParams configures a switch model.
	SwitchParams = vswitch.Params
	// SwitchArch selects the buffering architecture.
	SwitchArch = vswitch.Arch
	// CPUModel is the fixed-CPI server compute model.
	CPUModel = cpu.Model
	// ServerConfig configures a machine (CPU, kernel, NIC, TCP).
	ServerConfig = kernel.Config
	// KernelProfile is a kernel-version cost model.
	KernelProfile = kernel.Profile
	// DaemonConfig describes background housekeeping load.
	DaemonConfig = kernel.DaemonConfig
)

// Hop classes.
const (
	Local  = topology.Local
	OneHop = topology.OneHop
	TwoHop = topology.TwoHop
)

// Switch architectures.
const (
	ArchVOQ          = vswitch.ArchVOQ
	ArchSharedOutput = vswitch.ArchSharedOutput
	ArchDropTail     = vswitch.ArchDropTail
)

// Memcached client transports.
const (
	ProtoUDP = memcache.UDP
	ProtoTCP = memcache.TCP
)

// Application programming surface (simulated OS).
type (
	// Machine is one simulated server.
	Machine = kernel.Machine
	// Thread is a simulated kernel thread running application code.
	Thread = kernel.Thread
	// UDPSocket is a bound datagram socket.
	UDPSocket = kernel.UDPSocket
	// TCPSocket is a connection endpoint.
	TCPSocket = kernel.TCPSocket
	// TCPListener accepts connections.
	TCPListener = kernel.TCPListener
	// Epoll is the readiness multiplexer.
	Epoll = kernel.Epoll
	// EpollEvent is one readiness notification.
	EpollEvent = kernel.EpollEvent
	// NodeID identifies a server.
	NodeID = packet.NodeID
	// Addr is a transport address.
	Addr = packet.Addr
	// Port is a transport port.
	Port = packet.Port
)

// Epoll interest bits.
const (
	EpollIn  = kernel.EpollIn
	EpollOut = kernel.EpollOut
	EpollHup = kernel.EpollHup
	// WaitForever is the infinite epoll timeout.
	WaitForever = kernel.WaitForever
)

// Measurement.
type (
	// Histogram is a log-bucketed latency histogram.
	Histogram = metrics.Histogram
	// Series is a named (x, y) data series (one plotted curve).
	Series = metrics.Series
	// Table is a rendered text table.
	Table = metrics.Table
)

// Experiments (the paper's evaluation).
type (
	// IncastConfig parameterizes a §4.1 TCP Incast run.
	IncastConfig = core.IncastConfig
	// IncastResult is a finished incast run.
	IncastResult = incast.Result
	// IncastSweep parameterizes the Figure 6 sweeps.
	IncastSweep = core.IncastSweep
	// MemcachedConfig parameterizes a §4.2 memcached experiment.
	MemcachedConfig = core.MemcachedConfig
	// MemcachedResult aggregates a memcached experiment.
	MemcachedResult = core.MemcachedResult
	// MemcachedSweep parameterizes the §4.2 figure reproductions.
	MemcachedSweep = core.MemcachedSweep
	// MemcachedVersion is a memcached release profile.
	MemcachedVersion = memcache.Version
	// ETCParams are the Facebook ETC workload parameters.
	ETCParams = workload.ETCParams
	// PerfPoint is one §5 simulator-performance measurement.
	PerfPoint = core.PerfPoint
)

// Constructors and helpers re-exported from the internal packages.
var (
	// NewCluster builds and wires a cluster.
	NewCluster = core.New
	// WithPartitions sets the parallel worker count for a multi-rack
	// cluster (0 = adaptive engine selection); results are identical at any
	// worker count and on either engine.
	WithPartitions = core.WithPartitions
	// WithQuantum overrides the synchronization quantum (must not exceed
	// the minimum inter-partition link latency).
	WithQuantum = core.WithQuantum
	// WithSequentialEngine forces the whole model onto the sequential
	// engine regardless of machine shape; for A/B measurement and the
	// engine-invariance gates.
	WithSequentialEngine = core.WithSequentialEngine
	// PlanEngine is the adaptive engine-selection policy core.New applies
	// (exposed for tools and tests that want the decision without a build).
	PlanEngine = core.PlanEngine
	// DefaultClusterConfig returns the paper's baseline cluster for a
	// topology.
	DefaultClusterConfig = core.DefaultConfig
	// NewTopology validates topology parameters.
	NewTopology = topology.New
	// SingleRack builds a one-switch topology.
	SingleRack = topology.SingleRack

	// GHz builds a fixed-CPI CPU model.
	GHz = cpu.GHz
	// Linux2639 and Linux357 are the paper's kernel profiles; IdealHost is
	// the ns2-style zero-cost endpoint.
	Linux2639 = kernel.Linux2639
	Linux357  = kernel.Linux357
	IdealHost = kernel.IdealHost

	// Switch presets.
	Gigabit1GShallow      = vswitch.Gigabit1GShallow
	TenGigLowLatency      = vswitch.TenGigLowLatency
	SharedBufferCommodity = vswitch.SharedBufferCommodity
	NS2DropTail           = vswitch.NS2DropTail

	// Incast experiments.
	DefaultIncast = core.DefaultIncast
	RunIncast     = core.RunIncast
	Figure6a      = core.Figure6a
	Figure6b      = core.Figure6b

	// Memcached experiments.
	DefaultMemcached      = core.DefaultMemcached
	RunMemcached          = core.RunMemcached
	DefaultMemcachedSweep = core.DefaultMemcachedSweep
	Figure8               = core.Figure8
	DefaultFigure8        = core.DefaultFigure8
	Figure9               = core.Figure9
	Figure10              = core.Figure10
	Figure11              = core.Figure11
	Figure12              = core.Figure12
	Figure13              = core.Figure13
	Figure14              = core.Figure14
	Figure15              = core.Figure15

	// Workload.
	ETC = workload.ETC

	// Memcached versions.
	V1415 = memcache.V1415
	V1417 = memcache.V1417

	// Simulator performance (§5).
	Section5Performance      = core.Section5Performance
	PerfTable                = core.PerfTable
	EngineComparison         = core.EngineComparison
	EngineComparisonMeasured = core.EngineComparisonMeasured
)

// EngineComparisonStats carries the full engine-comparison measurement
// (throughput and allocs/event for both engines); see core.EngineComparisonMeasured.
type EngineComparisonStats = core.EngineComparisonStats

// Observability: deterministic simulated-time stats, engine introspection and
// Chrome-trace export (see DESIGN.md §5.8 for the determinism contract).
type (
	// ObserveConfig selects what an attached Observation records.
	ObserveConfig = core.ObserveConfig
	// Observation bundles the stats registry and trace attached to a cluster.
	Observation = core.Observation
	// StatsRegistry samples instruments on the simulated clock; its encoded
	// series are byte-identical at any worker count.
	StatsRegistry = obs.Registry
	// ChromeTrace collects trace events for chrome://tracing / Perfetto.
	ChromeTrace = obs.Trace
	// RunManifest is the machine-readable record of one observed run
	// (schema diablo/run-manifest/v1).
	RunManifest = obs.Manifest
	// EngineIntrospection exposes per-partition utilization and barrier
	// statistics of a parallel run.
	EngineIntrospection = sim.EngineIntrospection
)

// Observability constructors and runners.
var (
	// DefaultObserve enables kernel/syscall/packet spans with cluster-level
	// gauges (per-node gauges off).
	DefaultObserve = core.DefaultObserve
	// Observe attaches a stats registry and trace to a cluster before Run.
	Observe = core.Observe
	// RunMemcachedObserved and RunIncastObserved run a workload with an
	// Observation attached and return it finished.
	RunMemcachedObserved = core.RunMemcachedObserved
	RunIncastObserved    = core.RunIncastObserved
	// ManifestDegradation converts a Degradation for a run manifest.
	ManifestDegradation = core.ManifestDegradation
)

// Fault injection and graceful degradation (see package fault and DESIGN.md
// §5.7 for the determinism contract).
type (
	// FaultPlan is a deterministic, schedule-driven fault plan.
	FaultPlan = fault.Plan
	// FaultAction is one scheduled fault window.
	FaultAction = fault.Action
	// FaultTarget names the component an action hits.
	FaultTarget = fault.Target
	// FaultKind enumerates the supported fault kinds.
	FaultKind = fault.Kind
	// FaultGenConfig parameterizes random fault-plan generation.
	FaultGenConfig = fault.GenConfig
	// FaultEdge is one recorded apply/clear transition of a fault window.
	FaultEdge = core.FaultEdge
	// Degradation quantifies a faulted run against its healthy baseline.
	Degradation = metrics.Degradation
	// ToRFlapConfig parameterizes the memcached-under-ToR-flap experiment.
	ToRFlapConfig = core.ToRFlapConfig
	// LossyUplinkConfig parameterizes the incast-under-loss experiment.
	LossyUplinkConfig = core.LossyUplinkConfig
	// FaultedMemcachedResult pairs baseline and faulted memcached runs.
	FaultedMemcachedResult = core.FaultedMemcachedResult
	// FaultedIncastResult pairs baseline and faulted incast runs.
	FaultedIncastResult = core.FaultedIncastResult
)

// Fault directions (which side of a duplex link an action hits).
const (
	DirBoth = fault.Both
	DirUp   = fault.Up
	DirDown = fault.Down
)

// Switch hierarchy levels for switch-targeted faults.
const (
	LevelToR   = fault.ToR
	LevelArray = fault.Array
	LevelDC    = fault.DC
)

// Fault-injection constructors and experiment runners.
var (
	// NewFaultPlan starts an empty plan with a master seed; chain the
	// builder methods (FlapRackUplink, DegradeEdge, StallNIC, ...).
	NewFaultPlan = fault.NewPlan
	// ParseFaultSpec parses the CLI fault grammar, e.g.
	// "tordegrade rack=0 at=30ms dur=200ms loss=0.5; nicstall node=3 at=1ms dur=500us".
	ParseFaultSpec = fault.ParseSpec
	// GenerateFaults draws a random (but seed-deterministic) plan.
	GenerateFaults = fault.Generate
	// WithFaults installs a fault plan at cluster construction.
	WithFaults = core.WithFaults

	// DefaultToRFlap and RunMemcachedToRFlap: §6-style memcached fan-out
	// latency under a ToR uplink flap.
	DefaultToRFlap      = core.DefaultToRFlap
	RunMemcachedToRFlap = core.RunMemcachedToRFlap
	// RunMemcachedFaulted runs baseline + faulted memcached under any plan.
	RunMemcachedFaulted = core.RunMemcachedFaulted
	// DefaultLossyUplink and RunIncastLossyUplink: §6-style incast collapse
	// with a lossy client downlink.
	DefaultLossyUplink   = core.DefaultLossyUplink
	RunIncastLossyUplink = core.RunIncastLossyUplink
	// RunIncastFaulted runs baseline + faulted incast under any plan.
	RunIncastFaulted = core.RunIncastFaulted
)
