// Quickstart: build a tiny two-rack cluster, run a UDP ping-pong and a TCP
// transfer across racks, and print what the simulator observed.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"diablo"
)

func main() {
	// A 2-rack array: 4 servers per rack under 1 Gbps ToR switches joined
	// by one array switch (the paper's Figure 1, in miniature).
	cfg := diablo.DefaultClusterConfig(diablo.TopologyParams{
		ServersPerRack: 4,
		RacksPerArray:  2,
		Arrays:         1,
	})
	cluster, err := diablo.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	// Node 0 runs a UDP echo server and a TCP sink; node 5 (other rack)
	// exercises both. Application code is ordinary Go making *simulated*
	// syscalls: every instruction, packet and interrupt is accounted for.
	cluster.Machine(0).Spawn("udp-echo", func(t *diablo.Thread) {
		sock, err := t.UDPSocket(9000)
		if err != nil {
			return
		}
		for {
			from, n, payload, err := sock.RecvFrom(t)
			if err != nil {
				return
			}
			t.Compute(2000) // pretend to think about it
			_ = sock.SendTo(t, from, n, payload)
		}
	})
	cluster.Machine(0).Spawn("tcp-sink", func(t *diablo.Thread) {
		lis, err := t.Listen(80, 8)
		if err != nil {
			return
		}
		for {
			conn, err := lis.Accept(t, true)
			if err != nil {
				return
			}
			total := 0
			for {
				n, _, err := conn.Recv(t, 1<<20)
				if err != nil || n == 0 {
					break
				}
				total += n
			}
			fmt.Printf("[%v] tcp-sink: connection done, %d bytes\n", t.Now(), total)
			conn.Close(t)
		}
	})

	cluster.Machine(5).Spawn("client", func(t *diablo.Thread) {
		// UDP round trips.
		sock, err := t.UDPSocket(0)
		if err != nil {
			return
		}
		for i := 0; i < 3; i++ {
			start := t.Now()
			_ = sock.SendTo(t, diablo.Addr{Node: 0, Port: 9000}, 200, i)
			_, _, _, err := sock.RecvFrom(t)
			if err != nil {
				return
			}
			fmt.Printf("[%v] udp ping %d: rtt=%v\n", t.Now(), i, t.Now().Sub(start))
		}

		// A 1 MB TCP transfer across the array switch.
		conn, err := t.Connect(diablo.Addr{Node: 0, Port: 80})
		if err != nil {
			return
		}
		start := t.Now()
		const total = 1 << 20
		if err := conn.Send(t, total, "bulk"); err != nil {
			return
		}
		conn.Close(t)
		elapsed := t.Now().Sub(start)
		fmt.Printf("[%v] tcp: handed %d bytes to the stack in %v (%.1f Mbps)\n",
			t.Now(), total, elapsed, float64(total)*8/elapsed.Seconds()/1e6)
	})

	cluster.RunUntil(2 * diablo.Second)

	// Everything is instrumented: links, switches, NICs, CPUs.
	sw := cluster.Tors[0]
	fmt.Printf("\ntor-0: forwarded %d packets (%d KB), dropped %d, peak buffer %d B\n",
		sw.Stats.Forwarded.Packets, sw.Stats.Forwarded.Bytes/1024,
		sw.Stats.Dropped.Packets, sw.Stats.PeakOccupied)
	m := cluster.Machine(0)
	fmt.Printf("node 0: %d interrupts, %d syscalls, TCP stats %+v\n",
		m.NIC().Stats.RxIRQs, m.Stats.Syscalls, m.TCPStats())
}
