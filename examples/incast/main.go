// Incast: reproduce the TCP Incast throughput collapse (paper §4.1,
// Figure 6a) in miniature — sweep the number of storage servers answering a
// synchronized read and watch goodput collapse once concurrent responses
// overrun the shallow switch buffers, then recover when the 200 ms minimum
// RTO is replaced by a fine-grained one (the fix of Vasudevan et al.).
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	"diablo"
)

func main() {
	fmt.Println("TCP Incast on a 1 Gbps shallow-buffer ToR (256 KB per server, 10 iterations)")
	fmt.Printf("%-8s  %-14s %-14s %s\n", "senders", "goodput(200ms)", "goodput(2ms)", "timeouts(200ms)")
	for _, n := range []int{1, 2, 4, 8, 16, 24} {
		std := diablo.DefaultIncast(n)
		std.Iterations = 10

		fine := std
		fine.MinRTO = 2 * diablo.Millisecond

		rStd, err := diablo.RunIncast(std)
		if err != nil {
			log.Fatal(err)
		}
		rFine, err := diablo.RunIncast(fine)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d  %8.1f Mbps  %8.1f Mbps  %d\n",
			n, rStd.GoodputBps/1e6, rFine.GoodputBps/1e6, rStd.Timeouts)
	}
	fmt.Println("\nThe collapse is the classic incast pathology: whole response tails are")
	fmt.Println("dropped, too few duplicate ACKs arrive for fast retransmit, and each")
	fmt.Println("iteration stalls on the 200 ms retransmission timeout.")
}
