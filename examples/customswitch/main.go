// Custom switch design-space exploration: the flexibility argument of the
// paper (§2.4: "the simulator should support experimentation with radical
// new switch designs"). Build the same single-rack incast scenario against
// three switch architectures and a buffer sweep — no re-synthesis, just
// runtime parameters, exactly as DIABLO's models were runtime-configurable.
//
//	go run ./examples/customswitch
package main

import (
	"fmt"
	"log"

	"diablo"
)

func main() {
	const senders = 12

	fmt.Println("12-server synchronized read, one switch, three architectures:")
	fmt.Printf("%-34s %-12s %s\n", "switch", "goodput", "timeouts")
	archs := []struct {
		name string
		cfg  diablo.SwitchParams
	}{
		{"VOQ, 4KB/port pool (DIABLO)", diablo.Gigabit1GShallow("tor", 0)},
		{"shared 512KB (commodity)", diablo.SharedBufferCommodity("tor", 0)},
		{"drop-tail 4KB/output (ns2)", diablo.NS2DropTail("tor", 0)},
	}
	for _, a := range archs {
		res := run(a.cfg, senders)
		fmt.Printf("%-34s %8.1f Mbps %d\n", a.name, res.GoodputBps/1e6, res.Timeouts)
	}

	fmt.Println("\nBuffer sweep on the VOQ switch (per-port budget -> goodput):")
	for _, kb := range []int{2, 4, 8, 16, 32, 64} {
		cfg := diablo.Gigabit1GShallow("tor", 0)
		cfg.BufferPerPort = kb * 1024
		cfg.SharedBuffer = 0 // recompute pool from the new per-port budget
		res := run(cfg, senders)
		fmt.Printf("  %3d KB/port  %8.1f Mbps  (%d timeouts)\n", kb, res.GoodputBps/1e6, res.Timeouts)
	}

	fmt.Println("\nCut-through vs store-and-forward (unloaded ping latency impact):")
	for _, ct := range []bool{true, false} {
		cfg := diablo.Gigabit1GShallow("tor", 0)
		cfg.CutThrough = ct
		res := run(cfg, 1)
		fmt.Printf("  cut-through=%-5v 1-sender goodput %8.1f Mbps\n", ct, res.GoodputBps/1e6)
	}
}

func run(sw diablo.SwitchParams, senders int) diablo.IncastResult {
	cfg := diablo.DefaultIncast(senders)
	cfg.Switch = sw
	cfg.Iterations = 8
	res, err := diablo.RunIncast(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
