// Memcached latency tail at scale (paper §4.2): run the Figure 7 topology at
// the 500-node scale with 32 memcached servers under the Facebook ETC
// workload, and print the latency distribution broken down by how many
// switches each request traversed.
//
//	go run ./examples/memcached
package main

import (
	"fmt"
	"log"

	"diablo"
)

func main() {
	cfg := diablo.DefaultMemcached()
	cfg.Arrays = 1 // 496 nodes: 16 racks x 31 servers
	cfg.RequestsPerClient = 120

	fmt.Printf("Running %d clients against %d memcached servers over UDP...\n", 29*16, 2*16)
	res, err := diablo.RunMemcached(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d samples, %d/%d clients finished, server CPU %.1f%%, %d switch drops\n",
		res.Samples, res.ClientsDone, res.Clients, res.MeanUtil*100, res.SwitchDrops)
	fmt.Printf("overall: %s\n\n", res.Overall.Summary())

	fmt.Println("Latency by switch hops (the paper's Figure 10 classification):")
	for _, hop := range []diablo.HopClass{diablo.Local, diablo.OneHop, diablo.TwoHop} {
		h := res.ByHop[hop]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-6v n=%-6d p50=%-10v p99=%-10v p999=%v\n",
			hop, h.Count(), h.Percentile(.5), h.Percentile(.99), h.Percentile(.999))
	}

	fmt.Println("\n95th-100th percentile tail (the paper's Figure 11 view):")
	for _, q := range []float64{0.95, 0.99, 0.999, 1.0} {
		fmt.Printf("  p%-6.3g %v\n", q*100, res.Overall.Percentile(q))
	}
	fmt.Println("\nRequests crossing more switches have strictly fatter tails, and a few")
	fmt.Println("requests land orders of magnitude above the median — the long tail the")
	fmt.Println("paper reproduces at scale.")
}
